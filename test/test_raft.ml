(* Integration and safety tests for DepFastRaft. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_env ?(seed = 1L) () =
  let engine = Sim.Engine.create ~seed () in
  let trace = Depfast.Trace.create () in
  Depfast.Sched.create ~trace engine

(* run [body] as a coroutine and drive the simulation; servers run
   perpetual loops (timers, heartbeats), so bound virtual time *)
let in_coroutine ?(until = Sim.Time.sec 60) sched body =
  let finished = ref false in
  Depfast.Sched.spawn sched ~name:"test-driver" (fun () ->
      body ();
      finished := true);
  Depfast.Sched.run ~until sched;
  check_bool "driver finished" true !finished

let test_election_on_boot () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  in_coroutine sched (fun () ->
      match Raft.Group.wait_for_leader g () with
      | None -> Alcotest.fail "no leader elected"
      | Some leader ->
        check_bool "leader role" true (Raft.Server.is_leader leader);
        (* exactly one leader in that term *)
        let leaders = List.filter Raft.Server.is_leader g.servers in
        check_int "one leader" 1 (List.length leaders))

let test_put_get_roundtrip () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:1 () in
  let client = List.hd clients in
  in_coroutine sched (fun () ->
      ignore (Raft.Group.wait_for_leader g ());
      check_bool "put ok" true (Raft.Client.put client ~key:"k1" ~value:"v1");
      check_bool "put ok2" true (Raft.Client.put client ~key:"k2" ~value:"v2");
      (match Raft.Client.get client ~key:"k1" with
      | Some (Some v) -> Alcotest.(check string) "get k1" "v1" v
      | _ -> Alcotest.fail "get k1 failed");
      match Raft.Client.get client ~key:"missing" with
      | Some None -> ()
      | _ -> Alcotest.fail "expected committed read of absent key")

let test_replicas_converge () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:4 () in
  in_coroutine sched (fun () ->
      ignore (Raft.Group.wait_for_leader g ());
      List.iteri
        (fun ci c ->
          Depfast.Sched.spawn_here sched (fun () ->
              for i = 1 to 20 do
                ignore
                  (Raft.Client.put c
                     ~key:(Printf.sprintf "key%d" ((ci * 20) + i))
                     ~value:(string_of_int i))
              done))
        clients;
      (* let the writes and replication settle *)
      Depfast.Sched.sleep sched (Sim.Time.sec 3);
      let digests =
        List.map (fun s -> Raft.Kv.digest (Raft.Server.kv s)) g.servers
      in
      (match digests with
      | d :: rest -> List.iter (fun d' -> check_int "replica digest" d d') rest
      | [] -> assert false);
      let sizes = List.map (fun s -> Raft.Kv.size (Raft.Server.kv s)) g.servers in
      check_int "all 80 keys" 80 (List.hd sizes))

let test_exactly_once_dedup () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:1 () in
  let client = List.hd clients in
  in_coroutine sched (fun () ->
      ignore (Raft.Group.wait_for_leader g ());
      for i = 1 to 10 do
        ignore (Raft.Client.put client ~key:"ctr" ~value:(string_of_int i))
      done;
      Depfast.Sched.sleep sched (Sim.Time.sec 1);
      (* each op applied exactly once on every replica (Nops don't count) *)
      List.iter
        (fun s ->
          check_int
            (Printf.sprintf "applied on s%d" (Raft.Server.id s))
            10
            (Raft.Kv.applied_count (Raft.Server.kv s)))
        g.servers)

let test_follower_crash_tolerated () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:1 () in
  let client = List.hd clients in
  in_coroutine sched (fun () ->
      let leader = Option.get (Raft.Group.wait_for_leader g ()) in
      let follower =
        List.find (fun s -> not (Raft.Server.is_leader s)) g.servers
      in
      check_bool "put before crash" true (Raft.Client.put client ~key:"a" ~value:"1");
      Cluster.Node.crash (Raft.Server.node follower);
      check_bool "put after follower crash" true
        (Raft.Client.put client ~key:"b" ~value:"2");
      check_bool "leader unchanged" true (Raft.Server.is_leader leader))

let test_leader_crash_reelection () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:1 () in
  let client = List.hd clients in
  in_coroutine sched (fun () ->
      let leader = Option.get (Raft.Group.wait_for_leader g ()) in
      check_bool "put before crash" true (Raft.Client.put client ~key:"a" ~value:"1");
      let old_term = Raft.Server.term leader in
      Cluster.Node.crash (Raft.Server.node leader);
      Depfast.Sched.sleep sched (Sim.Time.sec 2);
      (match
         List.find_opt
           (fun s -> Raft.Server.is_leader s && Cluster.Node.alive (Raft.Server.node s))
           g.servers
       with
      | None -> Alcotest.fail "no new leader"
      | Some nl -> check_bool "term advanced" true (Raft.Server.term nl > old_term));
      check_bool "put after re-election" true
        (Raft.Client.put client ~key:"b" ~value:"2"))

let test_partition_minority_blocks () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  in_coroutine sched (fun () ->
      let leader = Option.get (Raft.Group.wait_for_leader g ()) in
      let lid = Raft.Server.id leader in
      let others = List.filter (fun s -> Raft.Server.id s <> lid) g.servers in
      (* isolate the leader from both followers *)
      List.iter (fun s -> Cluster.Rpc.partition g.rpc lid (Raft.Server.id s)) others;
      Depfast.Sched.sleep sched (Sim.Time.sec 2);
      (* majority side elected a new leader *)
      let new_leader =
        List.find_opt (fun s -> Raft.Server.is_leader s) others
      in
      check_bool "majority side has leader" true (new_leader <> None);
      (* heal; old leader must step down *)
      List.iter (fun s -> Cluster.Rpc.heal g.rpc lid (Raft.Server.id s)) others;
      Depfast.Sched.sleep sched (Sim.Time.sec 1);
      let leaders_alive = List.filter Raft.Server.is_leader g.servers in
      check_int "single leader after heal" 1 (List.length leaders_alive))

let test_leadership_transfer () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:1 () in
  let client = List.hd clients in
  in_coroutine sched (fun () ->
      let leader = Option.get (Raft.Group.wait_for_leader g ()) in
      ignore (Raft.Client.put client ~key:"x" ~value:"1");
      let target =
        List.find (fun s -> not (Raft.Server.is_leader s)) g.servers
      in
      Raft.Server.transfer_leadership leader ~target:(Raft.Server.id target);
      Depfast.Sched.sleep sched (Sim.Time.sec 1);
      check_bool "target took over" true (Raft.Server.is_leader target);
      check_bool "old leader stepped down" false (Raft.Server.is_leader leader);
      check_bool "writes still work" true (Raft.Client.put client ~key:"y" ~value:"2"))

(* ------------------------------------------------------------------ *)
(* Zero-copy log views *)

let mk_entry i : Raft.Types.entry =
  { term = 1; index = i; cmd = Raft.Types.Nop; client_id = -1; seq = 0 }

let test_rlog_view_generation () =
  let log = Raft.Rlog.create ~capacity:8 () in
  for i = 1 to 6 do
    Raft.Rlog.append log (mk_entry i)
  done;
  let v = Raft.Rlog.view log ~from:2 ~max:3 in
  check_int "view length" 3 (Raft.Rlog.View.length v);
  check_bool "valid when cut" true (Raft.Rlog.View.valid v);
  check_bool "bytes positive" true (Raft.Rlog.View.bytes v > 0);
  (* growing the backing store does NOT invalidate: the view keeps reading
     the store it was cut from, whose prefix is unchanged *)
  for i = 7 to 20 do
    Raft.Rlog.append log (mk_entry i)
  done;
  check_bool "valid after growth" true (Raft.Rlog.View.valid v);
  (match Raft.Types.view_materialize v with
  | Some a ->
    check_int "materialized length" 3 (Array.length a);
    check_int "first index" 2 a.(0).Raft.Types.index
  | None -> Alcotest.fail "view unexpectedly stale");
  (* any truncation bumps the generation and invalidates every outstanding
     view, even one whose window the truncation did not touch: the slots it
     references may be blanked or re-appended over *)
  let gen0 = Raft.Rlog.generation log in
  Raft.Rlog.truncate_from log 10;
  check_bool "generation bumped" true (Raft.Rlog.generation log > gen0);
  check_bool "stale after truncate" false (Raft.Rlog.View.valid v);
  check_bool "materialize refuses" true (Raft.Types.view_materialize v = None);
  (match Raft.Rlog.View.bytes v with
  | exception Raft.Rlog.View.Stale -> ()
  | _ -> Alcotest.fail "View.bytes must raise Stale");
  (* a view cut after the truncation is valid again *)
  let v2 = Raft.Rlog.view log ~from:1 ~max:100 in
  check_bool "fresh view valid" true (Raft.Rlog.View.valid v2);
  check_int "fresh view length" 9 (Raft.Rlog.View.length v2)

(* divergent uncommitted suffix: the deposed leader's log must be rewound
   and overwritten once the new leader's sender gets its consistency
   rejects — the pipeline window rewind path *)
let test_pipeline_rewind_after_reject () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:2 () in
  let c1 = List.hd clients and c2 = List.nth clients 1 in
  in_coroutine sched (fun () ->
      let old_leader = Option.get (Raft.Group.wait_for_leader g ()) in
      let lid = Raft.Server.id old_leader in
      check_bool "initial put" true (Raft.Client.put c1 ~key:"a" ~value:"1");
      let others = List.filter (fun s -> Raft.Server.id s <> lid) g.servers in
      List.iter (fun s -> Cluster.Rpc.partition g.rpc lid (Raft.Server.id s)) others;
      (* this write reaches only the isolated leader: it is appended (and
         shipped as views into the void) but can never commit *)
      Depfast.Sched.spawn sched ~name:"doomed-put" (fun () ->
          ignore (Raft.Client.put c2 ~key:"doomed" ~value:"x"));
      Depfast.Sched.sleep sched (Sim.Time.sec 2);
      let div_idx = Raft.Rlog.last_index (Raft.Server.log old_leader) in
      check_bool "old leader diverged" true
        (div_idx > Raft.Server.commit_index old_leader);
      let doomed = Option.get (Raft.Rlog.get (Raft.Server.log old_leader) div_idx) in
      check_bool "majority side elected" true
        (List.exists (fun s -> Raft.Server.is_leader s) others);
      (* commit past the divergence point on the majority side *)
      check_bool "put b" true (Raft.Client.put c1 ~key:"b" ~value:"2");
      check_bool "put c" true (Raft.Client.put c1 ~key:"c" ~value:"3");
      List.iter (fun s -> Cluster.Rpc.heal g.rpc lid (Raft.Server.id s)) others;
      Depfast.Sched.sleep sched (Sim.Time.sec 2);
      (* the new leader's first ship to the deposed leader was rejected on
         the prev check; the sender rewound its in-flight window and backed
         off next_index until the logs matched, then overwrote the
         divergent suffix. (The deposed leader may since have won a later
         election — what matters is that everyone converged.) *)
      check_bool "caught up past divergence" true
        (Raft.Server.commit_index old_leader >= div_idx);
      (match Raft.Rlog.get (Raft.Server.log old_leader) div_idx with
      | Some e ->
        check_bool "divergent entry overwritten" false (Raft.Types.equal_entry doomed e)
      | None -> Alcotest.fail "missing entry at divergence index");
      let min_commit =
        List.fold_left (fun m s -> min m (Raft.Server.commit_index s)) max_int g.servers
      in
      check_bool "all committed past divergence" true (min_commit >= div_idx);
      let reference = Raft.Server.log (List.hd g.servers) in
      for i = 1 to min_commit do
        let e0 = Option.get (Raft.Rlog.get reference i) in
        List.iter
          (fun s ->
            match Raft.Rlog.get (Raft.Server.log s) i with
            | Some e when Raft.Types.equal_entry e e0 -> ()
            | _ -> Alcotest.fail (Printf.sprintf "logs disagree at %d" i))
          g.servers
      done)

(* ------------------------------------------------------------------ *)
(* Group commit: one fsync covers a whole batch, and replies stay
   correct when the leader is deposed mid-batch *)

let test_single_fsync_per_batch () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:8 () in
  in_coroutine sched (fun () ->
      let leader = Option.get (Raft.Group.wait_for_leader g ()) in
      let disk = Cluster.Node.disk (Raft.Server.node leader) in
      Depfast.Sched.sleep sched (Sim.Time.ms 100);
      Cluster.Disk.reset_stats disk;
      let done_ = ref 0 in
      List.iteri
        (fun ci c ->
          Depfast.Sched.spawn_here sched (fun () ->
              for i = 1 to 5 do
                ignore
                  (Raft.Client.put c ~key:(Printf.sprintf "c%d" ci)
                     ~value:(string_of_int i))
              done;
              incr done_))
        clients;
      Depfast.Sched.sleep sched (Sim.Time.sec 5);
      check_int "all client loops finished" 8 !done_;
      (* 40 committed writes, but group commit folds concurrent arrivals
         into shared entries: strictly fewer WAL fsyncs than ops *)
      let fsyncs = Cluster.Disk.fsync_count disk in
      check_bool "at least one batch hit the disk" true (fsyncs > 0);
      check_bool "fewer fsyncs than committed ops" true (fsyncs < 40);
      let h = Raft.Server.batch_hist leader in
      check_bool "batches recorded" true (Sim.Hist.count h > 0);
      check_bool "multi-command batches formed" true (Sim.Hist.mean h > 1.0);
      check_int "nothing shed at this load" 0 (Raft.Server.shed_count leader))

let test_batch_replies_across_leader_change () =
  let sched = make_env () in
  let g = Raft.Group.create sched ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:4 () in
  in_coroutine sched (fun () ->
      let leader = Option.get (Raft.Group.wait_for_leader g ()) in
      let lid = Raft.Server.id leader in
      let oks = Array.make 4 0 in
      List.iteri
        (fun ci c ->
          Depfast.Sched.spawn_here sched (fun () ->
              for i = 1 to 5 do
                if
                  Raft.Client.put c
                    ~key:(Printf.sprintf "c%d" ci)
                    ~value:(string_of_int i)
                then oks.(ci) <- oks.(ci) + 1
              done))
        clients;
      (* depose the leader mid-stream: some commands sit in its admission
         queue, some in a sealed-but-uncommitted batch.  The clients must
         retry under the same sequence numbers against the new leader *)
      Depfast.Sched.sleep sched (Sim.Time.ms 3);
      let others = List.filter (fun s -> Raft.Server.id s <> lid) g.servers in
      List.iter (fun s -> Cluster.Rpc.partition g.rpc lid (Raft.Server.id s)) others;
      Depfast.Sched.sleep sched (Sim.Time.sec 2);
      List.iter (fun s -> Cluster.Rpc.heal g.rpc lid (Raft.Server.id s)) others;
      Depfast.Sched.sleep sched (Sim.Time.sec 3);
      (* every client's every put was acknowledged exactly once, applied
         exactly once on every replica, and the last write won *)
      Array.iteri
        (fun ci n -> check_int (Printf.sprintf "client %d acks" ci) 5 n)
        oks;
      List.iter
        (fun s ->
          check_int
            (Printf.sprintf "applied once on s%d" (Raft.Server.id s))
            20
            (Raft.Kv.applied_count (Raft.Server.kv s)))
        g.servers;
      List.iteri
        (fun ci c ->
          match Raft.Client.get c ~key:(Printf.sprintf "c%d" ci) with
          | Some (Some v) -> Alcotest.(check string) "last write wins" "5" v
          | _ -> Alcotest.fail "client's key missing after leader change")
        clients)

let test_admission_shed_fail_fast () =
  let sched = make_env () in
  let cfg =
    { Raft.Config.default with Raft.Config.max_batch = 4; admission_depth = 2 }
  in
  let g = Raft.Group.create sched ~cfg ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:12 () in
  in_coroutine sched (fun () ->
      let leader = Option.get (Raft.Group.wait_for_leader g ()) in
      (* a fail-slow leader disk stretches every group-commit round, so
         offered load overruns the 2-deep admission queue *)
      Cluster.Station.set_penalty
        (Cluster.Disk.station (Cluster.Node.disk (Raft.Server.node leader)))
        (fun () -> 50.0);
      let done_ = ref 0 in
      List.iteri
        (fun ci c ->
          Depfast.Sched.spawn_here sched (fun () ->
              for i = 1 to 6 do
                ignore
                  (Raft.Client.put c ~key:(Printf.sprintf "k%d" ci)
                     ~value:(string_of_int i))
              done;
              incr done_))
        clients;
      Depfast.Sched.sleep sched (Sim.Time.sec 8);
      check_int "all client loops finished" 12 !done_;
      check_bool "overload shed requests" true (Raft.Server.shed_count leader > 0);
      (* sheds are explicit replies, not drops: every one reached a client *)
      let client_sheds =
        List.fold_left (fun a c -> a + Raft.Client.ops_shed c) 0 clients
      in
      check_int "every shed reply reached a client" (Raft.Server.shed_count leader)
        client_sheds;
      check_bool "queue never past its bound" true
        (Raft.Server.pending_depth leader <= 2))

(* ------------------------------------------------------------------ *)
(* Safety properties under randomized fault schedules *)

let safety_run seed =
  let sched = make_env ~seed () in
  let g = Raft.Group.create sched ~n:5 () in
  let clients = Raft.Group.make_clients g ~count:3 () in
  let rng = Sim.Rng.create seed in
  (* track leaders per term as the run evolves *)
  let leaders_by_term : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let violation = ref None in
  Depfast.Sched.spawn sched ~name:"safety-observer" (fun () ->
      let rec observe () =
        List.iter
          (fun s ->
            if Raft.Server.is_leader s then begin
              let tm = Raft.Server.term s in
              match Hashtbl.find_opt leaders_by_term tm with
              | Some other when other <> Raft.Server.id s ->
                violation := Some (Printf.sprintf "two leaders in term %d" tm)
              | _ -> Hashtbl.replace leaders_by_term tm (Raft.Server.id s)
            end)
          g.servers;
        Depfast.Sched.sleep sched (Sim.Time.ms 20);
        if Depfast.Sched.now sched < Sim.Time.sec 12 then observe ()
      in
      observe ());
  (* clients hammer away *)
  List.iteri
    (fun ci c ->
      Depfast.Sched.spawn sched ~name:"safety-client" (fun () ->
          ignore (Raft.Group.wait_for_leader g ());
          for i = 1 to 30 do
            ignore
              (Raft.Client.put c ~key:(Printf.sprintf "k%d" (i mod 7))
                 ~value:(Printf.sprintf "c%d-%d" ci i))
          done))
    clients;
  (* adversary: random partitions healing over time *)
  Depfast.Sched.spawn sched ~name:"adversary" (fun () ->
      for _ = 1 to 6 do
        Depfast.Sched.sleep sched (Sim.Time.ms (Sim.Rng.int_in rng 300 900));
        let a = Sim.Rng.int rng 5 and b = Sim.Rng.int rng 5 in
        if a <> b then begin
          Cluster.Rpc.partition g.rpc a b;
          Depfast.Sched.sleep sched (Sim.Time.ms (Sim.Rng.int_in rng 200 700));
          Cluster.Rpc.heal g.rpc a b
        end
      done);
  Depfast.Sched.run ~until:(Sim.Time.sec 15) sched;
  (match !violation with
  | Some v -> Alcotest.fail v
  | None -> ());
  (* log matching: committed prefixes agree across all servers *)
  let min_commit =
    List.fold_left (fun m s -> min m (Raft.Server.commit_index s)) max_int g.servers
  in
  let reference = Raft.Server.log (List.hd g.servers) in
  for i = 1 to min_commit do
    let e0 = Option.get (Raft.Rlog.get reference i) in
    List.iter
      (fun s ->
        match Raft.Rlog.get (Raft.Server.log s) i with
        | Some e when Raft.Types.equal_entry e e0 -> ()
        | Some _ -> Alcotest.fail (Printf.sprintf "log mismatch at %d" i)
        | None -> Alcotest.fail (Printf.sprintf "missing committed entry %d" i))
      g.servers
  done

let test_safety_randomized () =
  List.iter safety_run [ 11L; 23L; 47L ]

let suite =
  [
    ( "raft.cluster",
      [
        Alcotest.test_case "boot election" `Quick test_election_on_boot;
        Alcotest.test_case "put/get roundtrip" `Quick test_put_get_roundtrip;
        Alcotest.test_case "replicas converge" `Quick test_replicas_converge;
        Alcotest.test_case "exactly-once dedup" `Quick test_exactly_once_dedup;
        Alcotest.test_case "follower crash tolerated" `Quick test_follower_crash_tolerated;
        Alcotest.test_case "leader crash re-election" `Quick test_leader_crash_reelection;
        Alcotest.test_case "partition and heal" `Quick test_partition_minority_blocks;
        Alcotest.test_case "leadership transfer" `Quick test_leadership_transfer;
        Alcotest.test_case "rlog view generation" `Quick test_rlog_view_generation;
        Alcotest.test_case "pipeline rewind after reject" `Quick
          test_pipeline_rewind_after_reject;
        Alcotest.test_case "single fsync per batch" `Quick test_single_fsync_per_batch;
        Alcotest.test_case "batch replies across leader change" `Quick
          test_batch_replies_across_leader_change;
        Alcotest.test_case "admission shed fails fast" `Quick
          test_admission_shed_fail_fast;
      ] );
    ( "raft.safety",
      [ Alcotest.test_case "randomized partitions" `Slow test_safety_randomized ] );
  ]
