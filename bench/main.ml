(** The benchmark harness: regenerates every table and figure of the paper
    (Table 1, Figures 1-3), the ablations, the §5 mitigation experiment, and
    the bechamel microbenchmarks.

    Usage:
      bench/main.exe                  run everything (full parameters)
      bench/main.exe --quick          run everything with small parameters
      bench/main.exe fig1 [--quick]   one experiment (table1 | fig1 | fig2 |
                                      fig3 | ablation | mitigation | micro)
      bench/main.exe micro fig1 --quick --json
                                      machine-readable smoke run: writes
                                      BENCH_core.json with the micro results
                                      and a trace-on vs trace-off DepFastRaft
                                      throughput comparison instead of the
                                      full fig1 sweep *)

let params quick = if quick then Harness.Params.quick else Harness.Params.full

(* --json collectors: single-writer CLI accumulators. Atomic rather than
   plain refs so the domains pass certifies them shared-safe outright —
   the harness now spawns domains (parallel explorer, shard pool), so
   "never shared" is no longer a structural guarantee worth a pragma. *)
let micro_results : Micro.result list Atomic.t = Atomic.make []
let trace_cmp : (float * float) option Atomic.t = Atomic.make None
let lint_stats : (int * float * int) option Atomic.t = Atomic.make None
(* files, wall ms, findings *)
type macro_row = {
  mr_tput : float;
  mr_p50 : float;
  mr_p99 : float;
  mr_cpu : float;
  mr_mean_batch : float;  (* committed ops per leader fsync *)
  mr_shed_rate : float;
  mr_fsyncs_per_op : float;
}

let macro_stats : macro_row option Atomic.t = Atomic.make None
let macro_nobatch_stats : macro_row option Atomic.t = Atomic.make None
let check_stats : (int * int * float * int) option Atomic.t = Atomic.make None
(* schedules, pruned, wall ms, findings *)
let bounds_stats : (int * float * int * int) option Atomic.t = Atomic.make None
(* files, wall ms, findings, certificates *)
let domains_stats : (int * float * int * int * int) option Atomic.t = Atomic.make None
(* files, wall ms, findings, cells, unsafe *)
let spg_stats : (int * float * int * int * int) option Atomic.t = Atomic.make None
(* files, wall ms, findings, wait sites, propagation edges *)
let nofeed_stats : (int * int) option Atomic.t = Atomic.make None
(* schedules, pruned with the DPOR independence feed off *)
let check_par_stats : (int * int * float) list Atomic.t = Atomic.make []
(* (jobs, schedules, wall ms) per explorer domain count *)
let shard_stats : (int * float * int * float * float) list Atomic.t = Atomic.make []
(* (jobs, wall ms, total ops, virtual ops/s, p99 ms) per shard-pool domain count *)

(* static-analysis probe: wall time of the per-file lint plus the
   whole-project interprocedural pass over the library sources — the
   lint must stay cheap enough to run on every build *)
let run_lint_json () =
  match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
  | None -> Printf.printf "lint probe: sources not available, skipped\n%!"
  | Some root ->
    let rec walk p acc =
      if Sys.is_directory p then
        Sys.readdir p |> Array.to_list |> List.sort compare
        |> List.fold_left (fun acc e -> walk (Filename.concat p e) acc) acc
      else if Filename.check_suffix p ".ml" && not (Filename.check_suffix p ".pp.ml") then
        p :: acc
      else acc
    in
    let files = List.rev (walk root []) in
    let t0 = Unix.gettimeofday () in
    let fs =
      List.concat_map Analysis.Source_lint.lint_file files
      @ Analysis.Interproc.analyze_files files
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    Atomic.set lint_stats @@ Some (List.length files, ms, List.length fs);
    Printf.printf "lint probe: %d file(s), %d finding(s) in %.1f ms\n%!" (List.length files)
      (List.length fs) ms

(* boundedness probe: wall time of the depfast-bounds pass (growth,
   timeout coverage, retry coverage plus certificate emission) over the
   library sources — certificates feed the gauge cross-check, so this
   pass too must stay build-cheap *)
let run_bounds_json () =
  match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
  | None -> Printf.printf "bounds probe: sources not available, skipped\n%!"
  | Some root ->
    let rec walk p acc =
      if Sys.is_directory p then
        Sys.readdir p |> Array.to_list |> List.sort compare
        |> List.fold_left (fun acc e -> walk (Filename.concat p e) acc) acc
      else if Filename.check_suffix p ".ml" && not (Filename.check_suffix p ".pp.ml") then
        p :: acc
      else acc
    in
    let files = List.rev (walk root []) in
    let t0 = Unix.gettimeofday () in
    let fs, certs = Analysis.Bounds.analyze_files files in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    Atomic.set bounds_stats @@ Some (List.length files, ms, List.length fs, List.length certs);
    Printf.printf
      "bounds probe: %d file(s), %d finding(s), %d certificate(s) in %.1f ms\n%!"
      (List.length files) (List.length fs) (List.length certs) ms

(* domain-safety probe: wall time of the depfast-domains pass (mutable
   state inventory, effect fixpoint, ownership verdicts, footprints)
   over the library sources — it runs on every strict lint and inside
   every certificate build, so it too must stay build-cheap *)
let run_domains_json () =
  match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
  | None -> Printf.printf "domains probe: sources not available, skipped\n%!"
  | Some root ->
    let rec walk p acc =
      if Sys.is_directory p then
        Sys.readdir p |> Array.to_list |> List.sort compare
        |> List.fold_left (fun acc e -> walk (Filename.concat p e) acc) acc
      else if Filename.check_suffix p ".ml" && not (Filename.check_suffix p ".pp.ml") then
        p :: acc
      else acc
    in
    let files = List.rev (walk root []) in
    let t0 = Unix.gettimeofday () in
    let fs, certs, _footprints = Analysis.Domains.analyze_files files in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let unsafe =
      List.length
        (List.filter (fun c -> c.Analysis.Growth.c_verdict = Analysis.Growth.Flagged) certs)
    in
    Atomic.set domains_stats @@ Some (List.length files, ms, List.length fs, List.length certs, unsafe);
    Printf.printf
      "domains probe: %d file(s), %d finding(s), %d cell(s), %d unsafe in %.1f ms\n%!"
      (List.length files) (List.length fs) (List.length certs) unsafe ms

(* slowness-propagation probe: wall time of the depfast-spg pass (taint
   seeding, callee->caller fixpoint, wait classification, certificate
   emission) over the library sources — its exposure map feeds the
   explorer's SPG cross-check, so it must stay build-cheap too *)
let run_spg_json () =
  match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
  | None -> Printf.printf "spg probe: sources not available, skipped\n%!"
  | Some root ->
    let rec walk p acc =
      if Sys.is_directory p then
        Sys.readdir p |> Array.to_list |> List.sort compare
        |> List.fold_left (fun acc e -> walk (Filename.concat p e) acc) acc
      else if Filename.check_suffix p ".ml" && not (Filename.check_suffix p ".pp.ml") then
        p :: acc
      else acc
    in
    let files = List.rev (walk root []) in
    let t0 = Unix.gettimeofday () in
    let fs, certs, _exposures = Analysis.Spg_static.analyze_files files in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let count k =
      List.length (List.filter (fun c -> c.Analysis.Growth.c_kind = k) certs)
    in
    let waits = count "wait" and edges = count "propagation" in
    Atomic.set spg_stats @@ Some (List.length files, ms, List.length fs, waits, edges);
    Printf.printf
      "spg probe: %d file(s), %d finding(s), %d wait site(s), %d propagation edge(s) in \
       %.1f ms\n%!"
      (List.length files) (List.length fs) waits edges ms

(* trace overhead probe: the same DepFastRaft quick cell with the wait-trace
   ring disabled and enabled; tracing must cost well under 10% throughput *)
let run_fig1_json quick =
  let params = params quick in
  let tput trace =
    let cell =
      Harness.Runner.run_cell ~trace ~params ~system:Harness.Runner.Depfast_raft ~n:3
        ~slow_count:1 ~fault:None ()
    in
    Workload.Metrics.throughput cell.Harness.Runner.metrics
  in
  let off = tput false in
  let on = tput true in
  Atomic.set trace_cmp @@ Some (off, on);
  Printf.printf "fig1 trace probe: trace-off %.0f ops/s, trace-on %.0f ops/s (%.1f%%)\n%!"
    off on
    (100.0 *. on /. off)

(* schedule-space probe: the gating scenario registry under its default
   per-scenario budgets, certificates included when the sources are
   reachable — the explored-schedule count and wall time the checker is
   accountable to (DESIGN.md §"Schedule-space checking") *)
let run_check_json () =
  (* start from a compacted heap so the probe measures the checker, not
     the GC debt of whatever ran before it (the smoke rule also orders
     this probe before the bechamel run, whose measurement loops leave
     the allocator in a state that inflates re-execution wall time) *)
  Gc.compact ();
  let certs =
    match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
    | None -> None
    | Some root -> Some (Check.Certificate.build ~roots:[ root ] ())
  in
  let t0 = Unix.gettimeofday () in
  let results =
    List.map
      (fun (sc : Check.Scenario.t) ->
        let budget =
          {
            Check.Explore.default_budget with
            Check.Explore.max_schedules = sc.Check.Scenario.default_schedules;
          }
        in
        Check.Explore.explore ~budget ?certs sc)
      Check.Registry.gating_scenarios
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let schedules = List.fold_left (fun a r -> a + r.Check.Explore.schedules) 0 results in
  let pruned = List.fold_left (fun a r -> a + r.Check.Explore.pruned) 0 results in
  let findings =
    List.fold_left (fun a r -> a + List.length r.Check.Explore.findings) 0 results
  in
  Atomic.set check_stats @@ Some (schedules, pruned, ms, findings);
  Printf.printf
    "check probe: %d schedule(s) explored, %d pruned, %d finding(s) in %.0f ms\n%!"
    schedules pruned findings ms;
  (* the same registry with no certificates, hence no depfast-domains
     independence feed: the schedule-count delta is the feed's rent *)
  let nofeed =
    List.map
      (fun (sc : Check.Scenario.t) ->
        let budget =
          {
            Check.Explore.default_budget with
            Check.Explore.max_schedules = sc.Check.Scenario.default_schedules;
          }
        in
        Check.Explore.explore ~budget sc)
      Check.Registry.gating_scenarios
  in
  let s0 = List.fold_left (fun a r -> a + r.Check.Explore.schedules) 0 nofeed in
  let p0 = List.fold_left (fun a r -> a + r.Check.Explore.pruned) 0 nofeed in
  Atomic.set nofeed_stats @@ Some (s0, p0);
  Printf.printf "check probe (feed off): %d schedule(s) explored, %d pruned\n%!" s0 p0

(* parallel-explorer probe: the same gating registry at 1, 2 and 4
   domains. Determinism makes the runs comparable schedule-for-schedule
   (identical totals by construction); the wall-clock ratio is bounded
   by the cores the host actually exposes, so the row records the
   measured speedup, whatever it is, next to the schedule count. *)
let run_check_par_json () =
  Gc.compact ();
  let certs =
    match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
    | None -> None
    | Some root -> Some (Check.Certificate.build ~roots:[ root ] ())
  in
  let one jobs =
    let t0 = Unix.gettimeofday () in
    let results =
      List.map
        (fun (sc : Check.Scenario.t) ->
          let budget =
            {
              Check.Explore.default_budget with
              Check.Explore.max_schedules = sc.Check.Scenario.default_schedules;
            }
          in
          Check.Explore.explore ~budget ?certs ~jobs sc)
        Check.Registry.gating_scenarios
    in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let schedules = List.fold_left (fun a r -> a + r.Check.Explore.schedules) 0 results in
    (jobs, schedules, ms)
  in
  let rows = List.map one [ 1; 2; 4 ] in
  Atomic.set check_par_stats rows;
  let base = match rows with (_, _, ms) :: _ -> ms | [] -> 0.0 in
  List.iter
    (fun (jobs, schedules, ms) ->
      Printf.printf
        "check-par probe: jobs=%d, %d schedule(s) in %.0f ms (speedup %.2fx)\n%!" jobs
        schedules ms
        (if ms > 0.0 then base /. ms else 0.0))
    rows

(* shard-pool probe: four per-domain Raft shards under closed-loop write
   load with 10% cross-shard traffic, on one domain and on four. The two
   runs report identical per-shard stats (the barrier-quantum merge is
   deterministic in the domain count); the wall-clock ratio records what
   the host's cores deliver. *)
let run_shard_json quick =
  let quanta = if quick then 12 else 40 in
  let one jobs =
    let t0 = Unix.gettimeofday () in
    let r = Raft.Shardpool.run ~shards:4 ~jobs ~quanta () in
    let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let ops = Raft.Shardpool.total_ops r in
    let tput = float_of_int ops /. Sim.Time.to_sec_f r.Raft.Shardpool.r_virtual in
    let p99 = Sim.Time.to_ms_f (Sim.Hist.p99 (Raft.Shardpool.merged_latency r)) in
    (jobs, ms, ops, tput, p99)
  in
  let rows = List.map one [ 1; 4 ] in
  Atomic.set shard_stats rows;
  let base = match rows with (_, ms, _, _, _) :: _ -> ms | [] -> 0.0 in
  List.iter
    (fun (jobs, ms, ops, tput, p99) ->
      Printf.printf
        "shard probe: jobs=%d, %d op(s), %.0f virtual ops/s, p99 %.2f ms, %.0f ms wall \
         (speedup %.2fx)\n\
         %!"
        jobs ops tput p99 ms
        (if ms > 0.0 then base /. ms else 0.0))
    rows

(* macro throughput probe: the fig1-shaped healthy cell (3-replica
   DepFastRaft under the closed-loop YCSB-style write workload, no fault
   injected) — the replication-path number the zero-copy/pooled/pipelined
   overhaul and now the group-commit batcher are accountable to. Runs the
   cell twice: with the adaptive batcher (default config) and with batching
   forced off ([max_batch = 1]), so the JSON records the amortization
   (mean batch size, fsyncs per op) next to its throughput effect. *)
let run_macro_json quick =
  let params = params quick in
  let row ~cfg =
    let cell =
      Harness.Runner.run_cell ~cfg ~trace:false ~params ~system:Harness.Runner.Depfast_raft
        ~n:3 ~slow_count:1 ~fault:None ()
    in
    let m = cell.Harness.Runner.metrics in
    {
      mr_tput = Workload.Metrics.throughput m;
      mr_p50 = Workload.Metrics.p50_latency_ms m;
      mr_p99 = Workload.Metrics.p99_latency_ms m;
      mr_cpu = m.Workload.Metrics.leader_utilization;
      mr_mean_batch =
        (if m.Workload.Metrics.leader_fsyncs = 0 then 0.0
         else
           float_of_int m.Workload.Metrics.completed
           /. float_of_int m.Workload.Metrics.leader_fsyncs);
      mr_shed_rate = Workload.Metrics.shed_rate m;
      mr_fsyncs_per_op = Workload.Metrics.fsyncs_per_op m;
    }
  in
  let pr label r =
    Printf.printf
      "macro probe (%s): %.0f ops/s, p50 %.2f ms, p99 %.2f ms, leader CPU %.0f%%, mean \
       batch %.1f, %.2f fsyncs/op, shed %.1f%%\n\
       %!"
      label r.mr_tput r.mr_p50 r.mr_p99 (100.0 *. r.mr_cpu) r.mr_mean_batch
      r.mr_fsyncs_per_op (100.0 *. r.mr_shed_rate)
  in
  let on = row ~cfg:Raft.Config.default in
  Atomic.set macro_stats @@ Some on;
  pr "batching" on;
  let off = row ~cfg:{ Raft.Config.default with Raft.Config.max_batch = 1 } in
  Atomic.set macro_nobatch_stats @@ Some off;
  pr "no batching" off

let run_experiment ~json quick = function
  | "table1" -> Harness.Table1.print ()
  | "fig1" -> if json then run_fig1_json quick else Harness.Fig1.print ~params:(params quick) ()
  | "fig2" -> Harness.Fig2.print ()
  | "fig3" -> Harness.Fig3.print ~params:(params quick) ()
  | "ablation" -> Harness.Ablation.print ~params:(params quick) ()
  | "mitigation" -> Harness.Mitigation.print ~params:(params quick) ()
  | "micro" ->
    (* bechamel's stabilization sets Gc.max_overhead (compaction off)
       and never restores it; put the parameters back afterwards *)
    let gc = Gc.get () in
    let rs = Micro.results () in
    Gc.set gc;
    if json then Atomic.set micro_results @@ rs;
    Micro.print rs
  | "lint" -> run_lint_json ()
  | "bounds" -> run_bounds_json ()
  | "domains" -> run_domains_json ()
  | "spg" -> run_spg_json ()
  | "macro" -> run_macro_json quick
  | "check" -> run_check_json ()
  | "check_par" -> run_check_par_json ()
  | "shard" -> run_shard_json quick
  | other ->
    Printf.eprintf
      "unknown experiment %S (expected \
       table1|fig1|fig2|fig3|ablation|mitigation|micro|lint|bounds|domains|spg|macro|check|check_par|shard)\n"
      other;
    exit 2

let all =
  [
    "table1"; "fig1"; "fig2"; "fig3"; "ablation"; "mitigation"; "micro"; "lint";
    "bounds"; "domains"; "spg"; "macro"; "check"; "check_par"; "shard";
  ]

(* hand-rolled JSON: two flat sections, no escaping needed beyond labels
   (which are ASCII without quotes/backslashes) *)
let write_json path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"micro\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"label\": %S, \"ns_per_run\": %.2f, \
            \"minor_words_per_run\": %.2f}%s\n"
           r.Micro.key r.Micro.label r.Micro.ns_per_run r.Micro.minor_words_per_run
           (if i = List.length (Atomic.get micro_results) - 1 then "" else ",")))
    (Atomic.get micro_results);
  Buffer.add_string buf "  ]";
  (match (Atomic.get trace_cmp) with
  | Some (off, on) ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\n  \"fig1_trace\": {\"trace_off_tput\": %.2f, \"trace_on_tput\": %.2f, \
          \"ratio\": %.4f}"
         off on (on /. off))
  | None -> ());
  let macro_fields r =
    Printf.sprintf
      "{\"tput_ops_s\": %.2f, \"p50_ms\": %.2f, \"p99_ms\": %.2f, \"leader_cpu\": \
       %.4f, \"mean_batch\": %.2f, \"fsyncs_per_op\": %.4f, \"shed_rate\": %.4f}"
      r.mr_tput r.mr_p50 r.mr_p99 r.mr_cpu r.mr_mean_batch r.mr_fsyncs_per_op
      r.mr_shed_rate
  in
  (match (Atomic.get macro_stats) with
  | Some r -> Buffer.add_string buf (",\n  \"fig1_macro\": " ^ macro_fields r)
  | None -> ());
  (match (Atomic.get macro_nobatch_stats) with
  | Some r -> Buffer.add_string buf (",\n  \"fig1_macro_nobatch\": " ^ macro_fields r)
  | None -> ());
  (match (Atomic.get lint_stats) with
  | Some (files, ms, findings) ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\n  \"lint\": {\"files\": %d, \"wall_ms\": %.2f, \"findings\": %d}" files ms
         findings)
  | None -> ());
  (match (Atomic.get bounds_stats) with
  | Some (files, ms, findings, certs) ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\n  \"bounds\": {\"files\": %d, \"wall_ms\": %.2f, \"findings\": %d, \
          \"certificates\": %d}"
         files ms findings certs)
  | None -> ());
  (match (Atomic.get domains_stats) with
  | Some (files, ms, findings, cells, unsafe) ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\n  \"domains\": {\"files\": %d, \"wall_ms\": %.2f, \"findings\": %d, \
          \"cells\": %d, \"unsafe\": %d}"
         files ms findings cells unsafe)
  | None -> ());
  (match (Atomic.get spg_stats) with
  | Some (files, ms, findings, waits, edges) ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\n  \"spg\": {\"files\": %d, \"wall_ms\": %.2f, \"findings\": %d, \
          \"wait_sites\": %d, \"edges\": %d}"
         files ms findings waits edges)
  | None -> ());
  (match (Atomic.get check_stats) with
  | Some (schedules, pruned, ms, findings) ->
    Buffer.add_string buf
      (Printf.sprintf
         ",\n  \"check_smoke\": {\"schedules\": %d, \"pruned\": %d, \"wall_ms\": %.2f, \
          \"findings\": %d%s}"
         schedules pruned ms findings
         (match (Atomic.get nofeed_stats) with
         | Some (s0, p0) ->
           Printf.sprintf ", \"schedules_nofeed\": %d, \"pruned_nofeed\": %d" s0 p0
         | None -> ""))
  | None -> ());
  (match Atomic.get check_par_stats with
  | [] -> ()
  | rows ->
    let base = match rows with (_, _, ms) :: _ -> ms | [] -> 0.0 in
    List.iter
      (fun (jobs, schedules, ms) ->
        Buffer.add_string buf
          (Printf.sprintf
             ",\n  \"check_par_%d\": {\"jobs\": %d, \"schedules\": %d, \"wall_ms\": \
              %.2f, \"speedup\": %.3f}"
             jobs jobs schedules ms
             (if ms > 0.0 then base /. ms else 0.0)))
      rows);
  (match Atomic.get shard_stats with
  | [] -> ()
  | rows ->
    let base = match rows with (_, ms, _, _, _) :: _ -> ms | [] -> 0.0 in
    List.iter
      (fun (jobs, ms, ops, tput, p99) ->
        Buffer.add_string buf
          (Printf.sprintf
             ",\n  \"fig1_macro_domains_%d\": {\"jobs\": %d, \"wall_ms\": %.2f, \
              \"ops\": %d, \"tput_ops_s\": %.2f, \"p99_ms\": %.2f, \"speedup\": %.3f}"
             jobs jobs ms ops tput p99
             (if ms > 0.0 then base /. ms else 0.0)))
      rows);
  Buffer.add_string buf "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let () =
  let quick = ref false in
  let json = ref false in
  let names = ref [] in
  let spec =
    [
      ("--quick", Arg.Set quick, " use small parameters (CI-friendly)");
      ("--json", Arg.Set json, " write BENCH_core.json (micro + fig1 trace probe)");
    ]
  in
  Arg.parse spec (fun a -> names := a :: !names) "bench/main.exe [--quick] [--json] [experiment...]";
  let names = if !names = [] then all else List.rev !names in
  List.iter (run_experiment ~json:!json !quick) names;
  if !json then write_json "BENCH_core.json"
