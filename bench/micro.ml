(** Bechamel microbenchmarks of the DepFast core primitives. *)

open Bechamel
open Toolkit

let bench_event_fire =
  Test.make ~name:"event: create+fire signal"
    (Staged.stage (fun () ->
         let ev = Depfast.Event.signal () in
         Depfast.Event.fire ev))

let bench_quorum_propagation =
  Test.make ~name:"event: 5-child majority quorum fires"
    (Staged.stage (fun () ->
         let q = Depfast.Event.quorum Depfast.Event.Majority in
         let children = List.init 5 (fun i -> Depfast.Event.rpc_completion ~peer:i ()) in
         List.iter (fun c -> Depfast.Event.add q ~child:c) children;
         List.iter Depfast.Event.fire children;
         assert (Depfast.Event.is_ready q)))

let bench_nested_stallers =
  Test.make ~name:"event: stallers of 2PC-shaped tree"
    (Staged.stage
       (let shard base =
          let q = Depfast.Event.quorum Depfast.Event.Majority in
          for i = 0 to 2 do
            Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer:(base + i) ())
          done;
          q
        in
        let all = Depfast.Event.and_ () in
        Depfast.Event.add all ~child:(shard 0);
        Depfast.Event.add all ~child:(shard 3);
        fun () -> ignore (Depfast.Event.stallers all)))

let bench_coroutine_spawn =
  Test.make ~name:"sched: spawn+run 100 coroutines"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let sched = Depfast.Sched.create engine in
         for _ = 1 to 100 do
           Depfast.Sched.spawn sched (fun () -> Depfast.Sched.yield sched)
         done;
         Depfast.Sched.run sched))

let bench_coroutine_wait =
  Test.make ~name:"sched: 100 quorum waits over timers"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let sched = Depfast.Sched.create engine in
         for _ = 1 to 100 do
           Depfast.Sched.spawn sched (fun () ->
               let q = Depfast.Event.quorum Depfast.Event.Majority in
               Depfast.Event.add q ~child:(Depfast.Sched.timer sched 10);
               Depfast.Event.add q ~child:(Depfast.Sched.timer sched 20);
               Depfast.Event.add q ~child:(Depfast.Sched.timer sched 400);
               Depfast.Sched.wait sched q)
         done;
         Depfast.Sched.run sched))

let bench_engine_timers =
  Test.make ~name:"engine: 1000 timers through the wheel"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         for i = 1 to 1000 do
           ignore (Sim.Engine.schedule engine ~delay:(i mod 97) (fun () -> ()))
         done;
         Sim.Engine.run engine))

let bench_hist =
  Test.make ~name:"hist: add + p99 over 1000 samples"
    (Staged.stage (fun () ->
         let h = Sim.Hist.create () in
         for i = 1 to 1000 do
           Sim.Hist.add h (i * 37 mod 100_000)
         done;
         ignore (Sim.Hist.p99 h)))

let bench_rlog =
  Test.make ~name:"rlog: append+slice 1000 entries"
    (Staged.stage (fun () ->
         let log = Raft.Rlog.create () in
         for i = 1 to 1000 do
           Raft.Rlog.append log
             { term = 1; index = i; cmd = Raft.Types.Nop; client_id = -1; seq = 0 }
         done;
         ignore (Raft.Rlog.slice_array log ~from:500 ~max:64)))

let bench_net_send =
  Test.make ~name:"net: send+deliver 1000 messages (pooled links)"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let sched = Depfast.Sched.create engine in
         let net = Cluster.Net.create sched ~latency:(Sim.Dist.Constant 100.0) () in
         let a = Cluster.Node.create sched ~id:0 ~name:"a" () in
         let b = Cluster.Node.create sched ~id:1 ~name:"b" () in
         Cluster.Net.register net a ~handler:(fun ~src:_ _ -> ());
         Cluster.Net.register net b ~handler:(fun ~src:_ _ -> ());
         for i = 1 to 1000 do
           Cluster.Net.send net ~src:(i land 1) ~dst:(1 - (i land 1)) i
         done;
         Depfast.Sched.run sched;
         assert (Cluster.Net.delivered_count net = 1000)))

let bench_rlog_ship =
  Test.make ~name:"rlog: ship 64-entry batch as a view (zero-copy)"
    (Staged.stage
       (let log = Raft.Rlog.create () in
        for i = 1 to 1000 do
          Raft.Rlog.append log
            { term = 1; index = i; cmd = Raft.Types.Nop; client_id = -1; seq = 0 }
        done;
        fun () ->
          let v = Raft.Rlog.view log ~from:500 ~max:64 in
          ignore (Raft.Rlog.View.bytes v)))

let bench_batch_drain =
  Test.make ~name:"raft: drain 64 queued commands into one Batch entry"
    (Staged.stage (fun () ->
         (* the leader's seal path: drain the admission queue through the
            forming accumulator into a single multi-command entry *)
         let q = Queue.create () in
         for i = 1 to 64 do
           Queue.add
             { Raft.Types.b_cmd = Raft.Types.Put { key = "k"; value = "v" };
               b_client = i land 7;
               b_seq = i }
             q
         done;
         let forming = ref [] in
         while not (Queue.is_empty q) do
           forming := Queue.pop q :: !forming
         done;
         let subs = Array.of_list (List.rev !forming) in
         let e =
           { Raft.Types.term = 1; index = 1; cmd = Raft.Types.Batch subs;
             client_id = -1; seq = 0 }
         in
         assert (Raft.Types.entry_bytes e > 0)))

let all_tests =
  [
    ("event_fire", bench_event_fire);
    ("quorum_5_children", bench_quorum_propagation);
    ("stallers_2pc_tree", bench_nested_stallers);
    ("spawn_100_coroutines", bench_coroutine_spawn);
    ("quorum_waits_100", bench_coroutine_wait);
    ("engine_1000_timers", bench_engine_timers);
    ("hist_1000_samples", bench_hist);
    ("rlog_append_slice", bench_rlog);
    ("net_send_1000", bench_net_send);
    ("rlog_ship_batch", bench_rlog_ship);
    ("batch_drain_64", bench_batch_drain);
  ]

type result = {
  key : string;  (** stable identifier for BENCH_core.json *)
  label : string;  (** human-readable test name *)
  ns_per_run : float;
  minor_words_per_run : float;
}

(* one benchmark, measured for wall time and minor-heap allocation *)
let measure (key, test) =
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
  let estimate witness =
    let analyzed =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
        witness raw
    in
    Hashtbl.fold
      (fun _ ols acc ->
        match Analyze.OLS.estimates ols with Some [ est ] -> (est, true) | _ -> acc)
      analyzed (nan, false)
  in
  let label =
    let n = Hashtbl.fold (fun name _ _ -> name) raw key in
    if String.length n > 2 && String.sub n 0 2 = "g/" then
      String.sub n 2 (String.length n - 2)
    else n
  in
  {
    key;
    label;
    ns_per_run = fst (estimate Instance.monotonic_clock);
    minor_words_per_run = fst (estimate Instance.minor_allocated);
  }

let results () = List.map measure all_tests

let print rs =
  Printf.printf "\n=== Microbenchmarks (bechamel) ===\n\n%!";
  List.iter
    (fun r ->
      Printf.printf "%-45s %12.1f ns/run %12.1f minor words/run\n%!" r.label
        r.ns_per_run r.minor_words_per_run)
    rs

let run () = print (results ())
