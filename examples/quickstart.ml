(* Quickstart: coroutines, events, and the QuorumEvent.

   This walks through the paper's §3.1 in runnable form:
   1. the naive coroutine loop that waits on each RPC individually
      (synchronous style, but NOT fail-slow tolerant), and
   2. the QuorumEvent rewrite that tolerates a slow minority.

   Run with:  dune exec examples/quickstart.exe *)

let ms = Sim.Time.ms

(* a toy "replica": replies to an append after a per-replica delay *)
let replica sched ~peer ~delay =
  let reply = Depfast.Event.rpc_completion ~peer () in
  Depfast.Sched.spawn sched ~name:"replica" (fun () ->
      Depfast.Sched.sleep sched delay;
      Depfast.Event.fire reply);
  reply

let () =
  (* replica 2 is fail-slow: 2 seconds instead of ~10 ms *)
  let delays = [ (0, ms 8); (1, ms 12); (2, ms 2000) ] in

  (* --- version 1: wait on each event individually (§3.1, first listing) *)
  let engine = Sim.Engine.create () in
  let sched = Depfast.Sched.create engine in
  Depfast.Sched.spawn sched ~name:"leader-naive" (fun () ->
      List.iter
        (fun (peer, delay) ->
          let rpc_event = replica sched ~peer ~delay in
          (* the next line bears possible slowness; kept on purpose as the
             "before" half of the demo — the quorum loop below is the fix.
             depfast-lint: allow red-wait unbounded-wait red-exposure *)
          Depfast.Sched.wait sched rpc_event)
        delays;
      Printf.printf "naive loop finished at %6.0f ms  <- dragged by the slow replica\n"
        (Sim.Time.to_ms_f (Depfast.Sched.now sched)));
  Depfast.Sched.run sched;

  (* --- version 2: QuorumEvent (§3.1, second listing) *)
  let engine = Sim.Engine.create () in
  let sched = Depfast.Sched.create engine in
  Depfast.Sched.spawn sched ~name:"leader-quorum" (fun () ->
      let quorum_event = Depfast.Event.quorum Depfast.Event.Majority in
      List.iter
        (fun (peer, delay) ->
          let rpc_event = replica sched ~peer ~delay in
          Depfast.Event.add quorum_event ~child:rpc_event
          (* no longer wait for any single event *))
        delays;
      (* wait for a majority *)
      Depfast.Sched.wait sched quorum_event;
      Printf.printf "quorum wait finished at %6.0f ms  <- slow minority tolerated\n"
        (Sim.Time.to_ms_f (Depfast.Sched.now sched));
      (* the audit agrees: no single node can stall this wait *)
      assert (Depfast.Event.stallers quorum_event = []));
  Depfast.Sched.run sched;

  (* --- nesting: the fast-path/slow-path idiom from §3.2 *)
  let engine = Sim.Engine.create () in
  let sched = Depfast.Sched.create engine in
  Depfast.Sched.spawn sched ~name:"fastpath" (fun () ->
      let fast_ok = Depfast.Event.quorum ~label:"fast_ok" (Depfast.Event.Count 2) in
      let fast_reject = Depfast.Event.quorum ~label:"fast_reject" (Depfast.Event.Count 2) in
      List.iteri
        (fun i (_, delay) ->
          let ok = Depfast.Event.rpc_completion ~peer:i () in
          Depfast.Event.add fast_ok ~child:ok;
          let reject = Depfast.Event.rpc_completion ~peer:i () in
          Depfast.Event.add fast_reject ~child:reject;
          Depfast.Sched.spawn sched ~name:"voter" (fun () ->
              Depfast.Sched.sleep sched delay;
              (* replicas 0 and 1 accept; the slow one would reject *)
              Depfast.Event.fire (if i < 2 then ok else reject)))
        delays;
      let fastpath = Depfast.Event.or_ ~label:"fastpath" () in
      Depfast.Event.add fastpath ~child:fast_ok;
      Depfast.Event.add fastpath ~child:fast_reject;
      match Depfast.Sched.wait_timeout sched fastpath (ms 1000) with
      | Depfast.Sched.Ready when Depfast.Event.is_ready fast_ok ->
        Printf.printf "fast path taken at   %6.0f ms  <- OrEvent over two QuorumEvents\n"
          (Sim.Time.to_ms_f (Depfast.Sched.now sched))
      | Depfast.Sched.Ready ->
        Printf.printf "fast path rejected; falling back to slow path\n"
      | Depfast.Sched.Timed_out -> Printf.printf "fast path timed out\n");
  Depfast.Sched.run sched
