(* Runtime verification: slowness propagation graphs and the fail-slow
   audit (§3.3, Figure 2).

   Builds a single Raft group, records every wait the system performs while
   serving client writes, and then:
   - renders the node-level SPG (green quorum edges, red single-event
     edges),
   - runs the audit that mechanises the paper's definition of fail-slow
     fault-tolerant code: no wait may give a single remote node the power
     to stall the waiter (clients are exempt — by design they wait on the
     leader, the red edges of Figure 2).

   Run with:  dune exec examples/spg_analysis.exe *)

let () =
  let engine = Sim.Engine.create ~seed:5L () in
  let trace = Depfast.Trace.create () in
  let sched = Depfast.Sched.create ~trace engine in
  let cfg = { Raft.Config.default with enable_hiccups = false } in
  let g = Raft.Group.create sched ~n:3 ~cfg () in
  Depfast.Sched.spawn sched ~name:"bootstrap" (fun () -> Raft.Group.elect g 0);
  Depfast.Sched.run ~until:(Sim.Time.sec 1) sched;
  let clients = Raft.Group.make_clients g ~count:2 () in

  (* trace only the steady state *)
  Depfast.Trace.enable trace;
  List.iteri
    (fun i c ->
      Cluster.Node.spawn (Raft.Client.node c) ~name:"client" (fun () ->
          for k = 1 to 40 do
            ignore (Raft.Client.put c ~key:(Printf.sprintf "k%d-%d" i k) ~value:"v")
          done))
    clients;
  Depfast.Sched.run ~until:(Sim.Time.sec 4) sched;
  Depfast.Trace.disable trace;

  Printf.printf "recorded %d waits\n\n" (Depfast.Trace.wait_count trace);

  let names id = if id >= 3 then Printf.sprintf "c%d" (id - 2) else Printf.sprintf "s%d" (id + 1) in
  let spg = Depfast.Spg.of_trace trace in
  Printf.printf "slowness propagation graph (node level):\n";
  Depfast.Spg.pp ~node_name:names Format.std_formatter spg;
  Format.pp_print_flush Format.std_formatter ();

  let is_client ~node = node >= 3 in
  let violations = Depfast.Spg.audit ~allow:is_client trace in
  Printf.printf "\nfail-slow audit (clients exempted): %s\n"
    (if violations = [] then "PASS - replication path uses only quorum waits"
     else Printf.sprintf "FAIL - %d single-point waits" (List.length violations));

  (* show what the audit would catch: a deliberate single wait on a peer *)
  Depfast.Trace.clear trace;
  Depfast.Trace.enable trace;
  Depfast.Sched.spawn sched ~node:0 ~name:"bad-code" (fun () ->
      let ev = Depfast.Event.rpc_completion ~label:"lone-rpc" ~peer:1 () in
      ignore (Sim.Engine.schedule engine ~delay:(Sim.Time.ms 5) (fun () -> Depfast.Event.fire ev));
      (* depfast-lint: allow red-wait unbounded-wait red-exposure — this red
         wait exists so the runtime audit below has something to flag *)
      Depfast.Sched.wait sched ev);
  Depfast.Sched.run ~until:(Sim.Time.add (Sim.Engine.now engine) (Sim.Time.ms 50)) sched;
  let bad = Depfast.Spg.audit ~allow:is_client trace in
  Printf.printf
    "\nafter adding one single-event wait on a peer, the audit reports %d violation(s):\n"
    (List.length bad);
  List.iter
    (fun v ->
      Printf.printf "  %s waits 1/1 on %s (event %S)\n"
        (names v.Depfast.Spg.v_wait.Depfast.Trace.node)
        (names v.Depfast.Spg.v_peer)
        (Depfast.Trace.event_label v.Depfast.Spg.v_wait))
    bad
