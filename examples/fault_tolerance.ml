(* Fail-slow fault injection against DepFastRaft (the paper's §3.4 claim,
   in miniature).

   Runs a short closed-loop write workload against a three-node cluster
   three times: healthy, with a CPU fail-slow follower (the cgroup "5% CPU"
   fault), and with a 400 ms NIC delay on a follower (`tc netem`). The
   throughput and latency barely move — compare with what the same faults do
   to the baseline implementations in `bench/main.exe fig1`.

   Run with:  dune exec examples/fault_tolerance.exe *)

let run_once ~fault =
  let engine = Sim.Engine.create ~seed:7L () in
  let sched = Depfast.Sched.create engine in
  let g = Raft.Group.create sched ~n:3 () in
  Depfast.Sched.spawn sched ~name:"bootstrap" (fun () -> Raft.Group.elect g 0);
  Depfast.Sched.run ~until:(Sim.Time.sec 1) sched;
  (match fault with
  | None -> ()
  | Some kind ->
    (* victim: a follower (node 1) *)
    let victim = List.find (fun n -> Cluster.Node.id n = 1) g.Raft.Group.nodes in
    ignore (Cluster.Fault.inject victim kind));
  let clients =
    List.map
      (fun c ->
        {
          Workload.Driver.node = Raft.Client.node c;
          run_op =
            (fun op ->
              let outcome =
                match op with
                | Workload.Ycsb.Update { key; value } ->
                  Raft.Client.submit c (Raft.Types.Put { key; value })
                | Workload.Ycsb.Read { key } -> Raft.Client.submit c (Raft.Types.Get { key })
              in
              match outcome with
              | Raft.Client.Committed _ -> Workload.Driver.Committed
              | Raft.Client.Shed -> Workload.Driver.Shed
              | Raft.Client.Failed -> Workload.Driver.Failed);
        })
      (Raft.Group.make_clients g ~count:64 ())
  in
  let workload = Workload.Ycsb.scaled ~records:10_000 Workload.Ycsb.update_heavy in
  Workload.Driver.run sched ~clients ~workload ~warmup:(Sim.Time.ms 500)
    ~duration:(Sim.Time.sec 3)
    ~leader_node:(Raft.Server.node (Raft.Group.server g 0))
    ()

let () =
  Printf.printf "%-28s | %9s %9s %9s\n" "Scenario" "tput/s" "avg ms" "p99 ms";
  Printf.printf "%s\n" (String.make 62 '-');
  List.iter
    (fun (label, fault) ->
      let m = run_once ~fault in
      Printf.printf "%-28s | %9.0f %9.2f %9.2f\n" label
        (Workload.Metrics.throughput m)
        (Workload.Metrics.mean_latency_ms m)
        (Workload.Metrics.p99_latency_ms m))
    [
      ("healthy", None);
      ("follower CPU limited to 5%", Some Cluster.Fault.Cpu_slow);
      ("follower NIC +400ms (tc)", Some Cluster.Fault.Net_slow);
      ("follower disk throttled", Some Cluster.Fault.Disk_slow);
    ];
  Printf.printf
    "\nA minority fail-slow follower has no seat in the majority QuorumEvent:\n\
     the leader commits with its WAL plus the healthy follower's progress.\n"
